//! The Eraser per-variable state machine and candidate locksets.

use std::collections::{HashMap, HashSet};
use velodrome_events::{LockId, ThreadId, VarId};

/// Eraser's per-variable protection state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum VarState {
    /// Never accessed.
    Virgin,
    /// Accessed by a single thread only.
    Exclusive(ThreadId),
    /// Read-shared across threads (no writes since sharing began);
    /// the candidate lockset is tracked but emptiness is not reported.
    Shared(HashSet<LockId>),
    /// Written by multiple threads; an empty candidate lockset is a race.
    SharedModified(HashSet<LockId>),
}

/// How an access was classified, used both for Eraser reporting and for the
/// Atomizer's mover classification.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessClass {
    /// The variable is (still) thread-local.
    ThreadLocal,
    /// The access is consistently lock-protected (or read-only shared).
    Protected,
    /// The candidate lockset is empty on shared-modified data: a potential
    /// race.
    Racy,
}

/// Candidate locksets plus currently-held locks per thread.
#[derive(Debug, Default)]
pub struct LockSetState {
    held: HashMap<ThreadId, HashSet<LockId>>,
    vars: HashMap<VarId, VarState>,
}

impl LockSetState {
    /// Creates empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records a lock acquisition by `t`.
    pub fn acquire(&mut self, t: ThreadId, m: LockId) {
        self.held.entry(t).or_default().insert(m);
    }

    /// Records a lock release by `t`.
    pub fn release(&mut self, t: ThreadId, m: LockId) {
        if let Some(set) = self.held.get_mut(&t) {
            set.remove(&m);
        }
    }

    /// The set of locks currently held by `t`.
    pub fn held(&self, t: ThreadId) -> HashSet<LockId> {
        self.held.get(&t).cloned().unwrap_or_default()
    }

    /// Whether `t` currently holds any lock.
    pub fn holds_any(&self, t: ThreadId) -> bool {
        self.held.get(&t).is_some_and(|s| !s.is_empty())
    }

    /// The current state of a variable.
    pub fn var_state(&self, x: VarId) -> &VarState {
        self.vars.get(&x).unwrap_or(&VarState::Virgin)
    }

    /// Whether the variable has already been classified racy.
    pub fn is_racy(&self, x: VarId) -> bool {
        matches!(self.vars.get(&x), Some(VarState::SharedModified(c)) if c.is_empty())
    }

    /// Processes a shared access, advancing the state machine and returning
    /// the access classification.
    pub fn access(&mut self, t: ThreadId, x: VarId, is_write: bool) -> AccessClass {
        let held = self.held(t);
        let state = self.vars.entry(x).or_insert(VarState::Virgin);
        match state {
            VarState::Virgin => {
                *state = VarState::Exclusive(t);
                AccessClass::ThreadLocal
            }
            VarState::Exclusive(owner) if *owner == t => AccessClass::ThreadLocal,
            VarState::Exclusive(_) => {
                // Second thread: the candidate set starts as the locks held
                // now.
                let candidate = held;
                let racy = candidate.is_empty() && is_write;
                *state = if is_write {
                    VarState::SharedModified(candidate)
                } else {
                    VarState::Shared(candidate)
                };
                if racy {
                    AccessClass::Racy
                } else {
                    AccessClass::Protected
                }
            }
            VarState::Shared(candidate) => {
                let mut c: HashSet<LockId> = candidate.intersection(&held).copied().collect();
                if is_write {
                    let racy = c.is_empty();
                    *state = VarState::SharedModified(std::mem::take(&mut c));
                    if racy {
                        AccessClass::Racy
                    } else {
                        AccessClass::Protected
                    }
                } else {
                    *state = VarState::Shared(c);
                    AccessClass::Protected
                }
            }
            VarState::SharedModified(candidate) => {
                let c: HashSet<LockId> = candidate.intersection(&held).copied().collect();
                let racy = c.is_empty();
                *state = VarState::SharedModified(c);
                if racy {
                    AccessClass::Racy
                } else {
                    AccessClass::Protected
                }
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u32) -> ThreadId {
        ThreadId::new(i)
    }
    fn x(i: u32) -> VarId {
        VarId::new(i)
    }
    fn m(i: u32) -> LockId {
        LockId::new(i)
    }

    #[test]
    fn virgin_to_exclusive() {
        let mut s = LockSetState::new();
        assert_eq!(s.access(t(0), x(0), true), AccessClass::ThreadLocal);
        assert_eq!(s.access(t(0), x(0), false), AccessClass::ThreadLocal);
        assert_eq!(*s.var_state(x(0)), VarState::Exclusive(t(0)));
    }

    #[test]
    fn second_thread_starts_candidate_set() {
        let mut s = LockSetState::new();
        s.access(t(0), x(0), true);
        s.acquire(t(1), m(0));
        assert_eq!(s.access(t(1), x(0), true), AccessClass::Protected);
        match s.var_state(x(0)) {
            VarState::SharedModified(c) => assert_eq!(c.len(), 1),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn intersection_empties_on_inconsistent_locks() {
        let mut s = LockSetState::new();
        s.access(t(0), x(0), true);
        s.acquire(t(1), m(0));
        s.access(t(1), x(0), true);
        s.release(t(1), m(0));
        s.acquire(t(0), m(1));
        assert_eq!(s.access(t(0), x(0), true), AccessClass::Racy);
        assert!(s.is_racy(x(0)));
    }

    #[test]
    fn read_shared_never_racy_without_writes() {
        let mut s = LockSetState::new();
        s.access(t(0), x(0), true);
        assert_eq!(s.access(t(1), x(0), false), AccessClass::Protected);
        assert_eq!(s.access(t(2), x(0), false), AccessClass::Protected);
        assert!(matches!(s.var_state(x(0)), VarState::Shared(_)));
    }

    #[test]
    fn write_after_read_shared_checks_lockset() {
        let mut s = LockSetState::new();
        s.access(t(0), x(0), true);
        s.access(t(1), x(0), false); // shared, candidate = {} (no locks held)
        assert_eq!(s.access(t(2), x(0), true), AccessClass::Racy);
    }

    #[test]
    fn held_locks_tracked_per_thread() {
        let mut s = LockSetState::new();
        s.acquire(t(0), m(0));
        s.acquire(t(0), m(1));
        s.release(t(0), m(0));
        assert_eq!(s.held(t(0)).len(), 1);
        assert!(s.holds_any(t(0)));
        assert!(!s.holds_any(t(1)));
    }
}
