//! Eraser-style lockset race analysis.
//!
//! Implements the classic Eraser algorithm (Savage et al., 1997): every
//! shared variable is expected to be consistently protected by some set of
//! locks; the candidate lockset starts as the set of locks held at the
//! first shared access and is intersected at every subsequent access. A
//! warning is raised when the candidate set of a *written* shared variable
//! becomes empty.
//!
//! Three consumers use this crate:
//!
//! * the [`Eraser`] back-end tool — the `Eraser` column of Table 1;
//! * the Atomizer, which classifies memory accesses as movers or non-movers
//!   based on [`AccessClass`]; and
//! * the Strict 2PL conformance checker ([`s2pl`]) — the related-work
//!   baseline of Section 7 (a sufficient-but-not-necessary condition for
//!   serializability).
//!
//! Eraser is *unsound and incomplete by design* (it neither understands
//! happens-before ordering nor non-lock synchronization); that imprecision
//! is what Velodrome's completeness is measured against.

pub mod s2pl;
pub mod state;

pub use s2pl::StrictTwoPhase;
pub use state::{AccessClass, LockSetState, VarState};

use velodrome_events::Op;
use velodrome_monitor::tool::{Tool, Warning, WarningCategory};

/// The Eraser back-end tool: reports one race warning per variable whose
/// candidate lockset empties after it has been written by multiple threads.
///
/// # Examples
///
/// ```
/// use velodrome_events::TraceBuilder;
/// use velodrome_lockset::Eraser;
/// use velodrome_monitor::run_tool;
///
/// let mut b = TraceBuilder::new();
/// b.write("T1", "x");
/// b.write("T2", "x"); // no common lock: candidate set is empty
/// let warnings = run_tool(&mut Eraser::new(), &b.finish());
/// assert_eq!(warnings.len(), 1);
/// ```
#[derive(Debug, Default)]
pub struct Eraser {
    state: LockSetState,
    warnings: Vec<Warning>,
    races_detected: u64,
}

impl Eraser {
    /// Creates the tool with empty state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Shared access to the underlying lockset state.
    pub fn state(&self) -> &LockSetState {
        &self.state
    }

    /// Racy accesses observed (before per-variable deduplication).
    pub fn races_detected(&self) -> u64 {
        self.races_detected
    }
}

impl Tool for Eraser {
    fn name(&self) -> &'static str {
        "eraser"
    }

    fn op(&mut self, index: usize, op: Op) {
        match op {
            Op::Acquire { t, m } => self.state.acquire(t, m),
            Op::Release { t, m } => self.state.release(t, m),
            Op::Read { t, x } | Op::Write { t, x } => {
                let newly_racy = !self.state.is_racy(x);
                let class = self.state.access(t, x, op.is_write());
                if class == AccessClass::Racy {
                    self.races_detected += 1;
                    if newly_racy {
                        self.warnings.push(Warning {
                            tool: "eraser",
                            category: WarningCategory::Race,
                            label: None,
                            thread: t,
                            op_index: index,
                            message: format!("possible race on {x}: lockset empty"),
                            details: None,
                        });
                    }
                }
            }
            // Eraser ignores transaction markers and fork/join (a source of
            // its false alarms on fork/join programs, per Section 6).
            Op::Begin { .. } | Op::End { .. } | Op::Fork { .. } | Op::Join { .. } => {}
        }
    }

    fn take_warnings(&mut self) -> Vec<Warning> {
        std::mem::take(&mut self.warnings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velodrome_events::TraceBuilder;
    use velodrome_monitor::run_tool;

    fn warnings(build: impl FnOnce(&mut TraceBuilder)) -> Vec<Warning> {
        let mut b = TraceBuilder::new();
        build(&mut b);
        let mut e = Eraser::new();
        run_tool(&mut e, &b.finish())
    }

    #[test]
    fn consistent_locking_is_silent() {
        let w = warnings(|b| {
            b.acquire("T1", "m").write("T1", "x").release("T1", "m");
            b.acquire("T2", "m").write("T2", "x").release("T2", "m");
        });
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn unprotected_shared_write_is_flagged() {
        let w = warnings(|b| {
            b.write("T1", "x");
            b.write("T2", "x");
        });
        assert_eq!(w.len(), 1);
        assert!(w[0].message.contains("lockset empty"));
    }

    #[test]
    fn thread_local_data_is_silent() {
        let w = warnings(|b| {
            for _ in 0..5 {
                b.read("T1", "x").write("T1", "x");
            }
        });
        assert!(w.is_empty());
    }

    #[test]
    fn read_only_sharing_is_silent() {
        let w = warnings(|b| {
            b.write("T1", "x"); // initialization while exclusive
            b.read("T2", "x").read("T3", "x");
        });
        assert!(w.is_empty(), "read-shared data needs no locks: {w:?}");
    }

    #[test]
    fn inconsistent_locks_are_flagged() {
        let w = warnings(|b| {
            b.acquire("T1", "m1").write("T1", "x").release("T1", "m1");
            b.acquire("T2", "m2").write("T2", "x").release("T2", "m2");
            // Third access: candidate {m2} ∩ {m1} = ∅ → warning.
            b.acquire("T1", "m1").write("T1", "x").release("T1", "m1");
        });
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn flag_handoff_false_alarm() {
        // The Section 2 handoff is perfectly synchronized, but Eraser
        // cannot see flag-based synchronization: false alarms, as the paper
        // describes.
        let w = warnings(|b| {
            b.read("T1", "b");
            b.begin("T1", "c1")
                .read("T1", "x")
                .write("T1", "x")
                .write("T1", "b")
                .end("T1");
            b.read("T2", "b");
            b.begin("T2", "c2")
                .read("T2", "x")
                .write("T2", "x")
                .write("T2", "b")
                .end("T2");
        });
        assert!(!w.is_empty(), "Eraser false-alarms on the handoff idiom");
    }

    #[test]
    fn one_warning_per_variable() {
        let w = warnings(|b| {
            for _ in 0..5 {
                b.write("T1", "x").write("T2", "x");
            }
        });
        assert_eq!(w.len(), 1);
    }

    #[test]
    fn fork_join_is_a_false_alarm_source() {
        // Parent writes, then forks a child that writes: genuinely ordered
        // (no race), but Eraser ignores fork edges.
        let w = warnings(|b| {
            b.write("T1", "x");
            b.fork("T1", "T2");
            b.write("T2", "x");
        });
        assert_eq!(w.len(), 1, "Eraser false-alarms on fork/join programs");
    }
}
