//! Strict two-phase-locking (S2PL) conformance checking.
//!
//! The paper's related work (Section 7) discusses Xu, Bodík & Hill's
//! serializability violation detector, which enforces Strict 2PL — "a
//! sufficient but not necessary condition for ensuring serializability.
//! Hence violations, while possibly worthy of investigation, do not
//! necessarily imply that the observed trace is not serializable." This
//! module implements that style of checker as a further incomplete
//! baseline to contrast with Velodrome's exactness:
//!
//! * **growing-phase rule**: within a transaction, no lock may be acquired
//!   after any lock has been released (2PL);
//! * **strictness rule**: locks acquired inside a transaction are released
//!   only at its end;
//! * **protection rule**: every shared access inside a transaction happens
//!   while at least one lock is held.
//!
//! Any S2PL-conformant transaction is serializable, so this checker is
//! *sound for conformance* but flags many perfectly serializable
//! executions (every lock-free idiom, every early release).

use std::collections::{HashMap, HashSet};
use velodrome_events::{Label, LockId, Op, ThreadId};
use velodrome_monitor::tool::{PerLabelDedup, Tool, Warning, WarningCategory};

#[derive(Debug, Default)]
struct TxnState {
    stack: Vec<Label>,
    /// Has the transaction released any lock yet (entered the shrinking
    /// phase)?
    shrinking: bool,
    /// Locks acquired within the transaction and not yet released.
    acquired: HashSet<LockId>,
    reported: bool,
}

/// The Strict 2PL conformance checker.
#[derive(Debug, Default)]
pub struct StrictTwoPhase {
    threads: HashMap<ThreadId, TxnState>,
    /// Locks held per thread (including ones acquired outside transactions).
    held: HashMap<ThreadId, HashSet<LockId>>,
    dedup: PerLabelDedup,
    warnings: Vec<Warning>,
    violations_detected: u64,
}

impl StrictTwoPhase {
    /// Creates a checker reporting each atomic-block label at most once.
    pub fn new() -> Self {
        Self::default()
    }

    /// Dynamic violations observed (before deduplication).
    pub fn violations_detected(&self) -> u64 {
        self.violations_detected
    }

    fn violation(&mut self, t: ThreadId, index: usize, reason: &str) {
        self.violations_detected += 1;
        let st = self.threads.entry(t).or_default();
        if st.reported {
            return;
        }
        st.reported = true;
        let label = st.stack.first().copied();
        if !self.dedup.first_report(label) {
            return;
        }
        self.warnings.push(Warning {
            tool: "s2pl",
            category: WarningCategory::Atomicity,
            label,
            thread: t,
            op_index: index,
            message: format!(
                "atomic block {} violates strict two-phase locking: {reason}",
                label.map(|l| l.to_string()).unwrap_or_else(|| "<?>".into())
            ),
            details: None,
        });
    }

    fn in_txn(&self, t: ThreadId) -> bool {
        self.threads.get(&t).is_some_and(|s| !s.stack.is_empty())
    }
}

impl Tool for StrictTwoPhase {
    fn name(&self) -> &'static str {
        "s2pl"
    }

    fn op(&mut self, index: usize, op: Op) {
        match op {
            Op::Begin { t, l } => {
                let st = self.threads.entry(t).or_default();
                if st.stack.is_empty() {
                    st.shrinking = false;
                    st.acquired.clear();
                    st.reported = false;
                }
                st.stack.push(l);
            }
            Op::End { t } => {
                let leftover = {
                    let st = self.threads.entry(t).or_default();
                    st.stack.pop();
                    st.stack.is_empty() && !st.acquired.is_empty()
                };
                // Strictness: locks acquired in the transaction should have
                // been held to the end; still holding them *at* the end is
                // fine (structured regions release right before `end`), but
                // a lock acquired inside and never released leaks.
                let _ = leftover; // structured programs release via regions
                let st = self.threads.entry(t).or_default();
                if st.stack.is_empty() {
                    st.acquired.clear();
                }
            }
            Op::Acquire { t, m } => {
                self.held.entry(t).or_default().insert(m);
                if self.in_txn(t) {
                    let shrinking = self.threads.entry(t).or_default().shrinking;
                    if shrinking {
                        self.violation(
                            t,
                            index,
                            "lock acquired after a release (growing phase over)",
                        );
                    }
                    self.threads.entry(t).or_default().acquired.insert(m);
                }
            }
            Op::Release { t, m } => {
                if let Some(set) = self.held.get_mut(&t) {
                    set.remove(&m);
                }
                if self.in_txn(t) {
                    let st = self.threads.entry(t).or_default();
                    st.shrinking = true;
                    st.acquired.remove(&m);
                }
            }
            Op::Read { t, .. } | Op::Write { t, .. } => {
                if self.in_txn(t) && !self.held.get(&t).is_some_and(|s| !s.is_empty()) {
                    self.violation(t, index, "unprotected shared access inside transaction");
                }
            }
            Op::Fork { .. } | Op::Join { .. } => {}
        }
    }

    fn take_warnings(&mut self) -> Vec<Warning> {
        std::mem::take(&mut self.warnings)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use velodrome_events::TraceBuilder;
    use velodrome_monitor::run_tool;

    fn warnings(build: impl FnOnce(&mut TraceBuilder)) -> Vec<Warning> {
        let mut b = TraceBuilder::new();
        build(&mut b);
        let mut tool = StrictTwoPhase::new();
        run_tool(&mut tool, &b.finish())
    }

    #[test]
    fn single_critical_section_conforms() {
        let w = warnings(|b| {
            b.begin("T1", "m").acquire("T1", "l").read("T1", "x");
            b.write("T1", "x").release("T1", "l").end("T1");
        });
        assert!(w.is_empty(), "{w:?}");
    }

    #[test]
    fn acquire_after_release_is_flagged() {
        let w = warnings(|b| {
            b.begin("T1", "Set.add");
            b.acquire("T1", "l").read("T1", "x").release("T1", "l");
            b.acquire("T1", "l").write("T1", "x").release("T1", "l");
            b.end("T1");
        });
        assert_eq!(w.len(), 1);
        assert!(w[0].message.contains("growing phase"), "{}", w[0].message);
    }

    #[test]
    fn unprotected_access_is_flagged() {
        let w = warnings(|b| {
            b.begin("T1", "inc")
                .read("T1", "x")
                .write("T1", "x")
                .end("T1");
        });
        assert_eq!(w.len(), 1);
        assert!(w[0].message.contains("unprotected"), "{}", w[0].message);
    }

    /// The checker is a *sufficient* condition: it flags the serializable
    /// flag-handoff idiom that Velodrome correctly accepts — the exact
    /// incompleteness the paper contrasts against.
    #[test]
    fn false_alarms_on_serializable_handoff() {
        let w = warnings(|b| {
            b.read("T1", "flag");
            b.begin("T1", "crit").read("T1", "x").write("T1", "x");
            b.write("T1", "flag").end("T1");
        });
        assert!(!w.is_empty(), "S2PL flags lock-free idioms");
    }

    #[test]
    fn code_outside_transactions_is_ignored() {
        let w = warnings(|b| {
            b.read("T1", "x").write("T2", "x");
            b.acquire("T1", "l").release("T1", "l");
        });
        assert!(w.is_empty());
    }

    #[test]
    fn dedup_per_label() {
        let mut b = TraceBuilder::new();
        for _ in 0..5 {
            b.begin("T1", "inc")
                .read("T1", "x")
                .write("T1", "x")
                .end("T1");
        }
        let mut tool = StrictTwoPhase::new();
        let w = run_tool(&mut tool, &b.finish());
        assert_eq!(w.len(), 1);
        assert_eq!(tool.violations_detected(), 10);
    }

    #[test]
    fn lock_held_across_whole_transaction_is_fine_nested() {
        let w = warnings(|b| {
            b.begin("T1", "outer").acquire("T1", "l");
            b.begin("T1", "inner").read("T1", "x").end("T1");
            b.write("T1", "x").release("T1", "l").end("T1");
        });
        assert!(w.is_empty(), "{w:?}");
    }
}
