//! The metric registry and its lock-cheap update handles.
//!
//! The registry mutex is taken only when a metric is (re-)registered or a
//! snapshot is collected; [`Counter`], [`Gauge`], [`Histogram`], and
//! [`PhaseTimer`] handles hold an `Arc` straight to the metric's atomic
//! storage, so hot-path updates are contention-free relaxed atomics.

use crate::snapshot::{MetricValue, Snapshot};
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// Number of power-of-two histogram buckets: bucket 0 holds zeros, bucket
/// `i` holds values whose highest set bit is `i - 1` (so `1 << 63` lands in
/// the last bucket and nothing overflows).
pub(crate) const BUCKETS: usize = 65;

#[derive(Debug)]
pub(crate) struct HistInner {
    pub(crate) buckets: [AtomicU64; BUCKETS],
    pub(crate) count: AtomicU64,
    pub(crate) sum: AtomicU64,
    pub(crate) max: AtomicU64,
}

impl HistInner {
    fn new() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, v: u64) {
        let idx = if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        };
        self.buckets[idx].fetch_add(1, Relaxed);
        self.count.fetch_add(1, Relaxed);
        self.sum.fetch_add(v, Relaxed);
        self.max.fetch_max(v, Relaxed);
    }
}

#[derive(Debug)]
pub(crate) struct PhaseInner {
    pub(crate) count: AtomicU64,
    pub(crate) total_nanos: AtomicU64,
    pub(crate) max_nanos: AtomicU64,
}

impl PhaseInner {
    fn new() -> Self {
        Self {
            count: AtomicU64::new(0),
            total_nanos: AtomicU64::new(0),
            max_nanos: AtomicU64::new(0),
        }
    }

    fn record(&self, nanos: u64) {
        self.count.fetch_add(1, Relaxed);
        self.total_nanos.fetch_add(nanos, Relaxed);
        self.max_nanos.fetch_max(nanos, Relaxed);
    }
}

/// One registered metric: the tag decides how a snapshot renders it.
#[derive(Debug, Clone)]
enum Metric {
    Counter(Arc<AtomicU64>),
    Gauge(Arc<AtomicU64>),
    Histogram(Arc<HistInner>),
    Phase(Arc<PhaseInner>),
}

impl Metric {
    fn kind(&self) -> &'static str {
        match self {
            Metric::Counter(_) => "counter",
            Metric::Gauge(_) => "gauge",
            Metric::Histogram(_) => "histogram",
            Metric::Phase(_) => "phase",
        }
    }
}

#[derive(Debug, Default)]
struct RegistryInner {
    metrics: Mutex<BTreeMap<String, Metric>>,
}

/// Handle to a telemetry registry, or the no-op disabled handle. Cloning is
/// cheap (an `Arc` bump); all clones share the same registry.
#[derive(Debug, Clone, Default)]
pub struct Telemetry {
    inner: Option<Arc<RegistryInner>>,
}

impl Telemetry {
    /// The no-op handle: every metric it hands out discards updates, and
    /// phase timers never read the clock. This is the default everywhere,
    /// so telemetry costs one never-taken branch unless a registry is
    /// explicitly attached.
    pub fn disabled() -> Self {
        Self { inner: None }
    }

    /// Creates a fresh, enabled registry.
    ///
    /// With the (default-on) `enabled` cargo feature switched off this also
    /// returns the disabled handle, compiling telemetry out of the build
    /// without touching call sites.
    pub fn registry() -> Self {
        #[cfg(feature = "enabled")]
        {
            Self {
                inner: Some(Arc::new(RegistryInner::default())),
            }
        }
        #[cfg(not(feature = "enabled"))]
        {
            Self::disabled()
        }
    }

    /// `true` when updates on handles from this registry are recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    fn register(&self, name: &str, make: impl FnOnce() -> Metric) -> Option<Metric> {
        let inner = self.inner.as_ref()?;
        let mut metrics = inner.metrics.lock().expect("telemetry registry poisoned");
        let metric = metrics.entry(name.to_owned()).or_insert_with(make);
        Some(metric.clone())
    }

    /// Registers (or resolves) the counter `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn counter(&self, name: &str) -> Counter {
        match self.register(name, || Metric::Counter(Arc::new(AtomicU64::new(0)))) {
            Some(Metric::Counter(c)) => Counter(Some(c)),
            Some(other) => panic!("metric `{name}` already registered as {}", other.kind()),
            None => Counter(None),
        }
    }

    /// Registers (or resolves) the gauge `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn gauge(&self, name: &str) -> Gauge {
        match self.register(name, || Metric::Gauge(Arc::new(AtomicU64::new(0)))) {
            Some(Metric::Gauge(g)) => Gauge(Some(g)),
            Some(other) => panic!("metric `{name}` already registered as {}", other.kind()),
            None => Gauge(None),
        }
    }

    /// Registers (or resolves) the histogram `name` (power-of-two buckets).
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn histogram(&self, name: &str) -> Histogram {
        match self.register(name, || Metric::Histogram(Arc::new(HistInner::new()))) {
            Some(Metric::Histogram(h)) => Histogram(Some(h)),
            Some(other) => panic!("metric `{name}` already registered as {}", other.kind()),
            None => Histogram(None),
        }
    }

    /// Registers (or resolves) the phase timer `name`.
    ///
    /// # Panics
    ///
    /// Panics if `name` is already registered as a different metric kind.
    pub fn phase(&self, name: &str) -> PhaseTimer {
        match self.register(name, || Metric::Phase(Arc::new(PhaseInner::new()))) {
            Some(Metric::Phase(p)) => PhaseTimer(Some(p)),
            Some(other) => panic!("metric `{name}` already registered as {}", other.kind()),
            None => PhaseTimer(None),
        }
    }

    /// Registers `name` as a gauge (if needed) and sets it — the one-shot
    /// publish path used by stat surfaces that push a whole struct at once.
    pub fn set_gauge(&self, name: &str, value: u64) {
        if self.inner.is_some() {
            self.gauge(name).set(value);
        }
    }

    /// Collects a point-in-time copy of every registered metric. Returns
    /// `None` on the disabled handle.
    pub fn snapshot(&self, seq: u64, events: u64) -> Option<Snapshot> {
        let inner = self.inner.as_ref()?;
        let metrics = inner.metrics.lock().expect("telemetry registry poisoned");
        let values = metrics
            .iter()
            .map(|(name, metric)| {
                let value = match metric {
                    Metric::Counter(c) => MetricValue::Counter(c.load(Relaxed)),
                    Metric::Gauge(g) => MetricValue::Gauge(g.load(Relaxed)),
                    Metric::Histogram(h) => {
                        let mut buckets: Vec<u64> =
                            h.buckets.iter().map(|b| b.load(Relaxed)).collect();
                        while buckets.last() == Some(&0) {
                            buckets.pop();
                        }
                        MetricValue::Histogram {
                            count: h.count.load(Relaxed),
                            sum: h.sum.load(Relaxed),
                            max: h.max.load(Relaxed),
                            buckets,
                        }
                    }
                    Metric::Phase(p) => MetricValue::Phase {
                        count: p.count.load(Relaxed),
                        total_nanos: p.total_nanos.load(Relaxed),
                        max_nanos: p.max_nanos.load(Relaxed),
                    },
                };
                (name.clone(), value)
            })
            .collect();
        Some(Snapshot {
            seq,
            events,
            metrics: values,
        })
    }
}

/// A monotonically increasing count. Updates are relaxed atomics; the
/// disabled handle discards them.
#[derive(Debug, Clone, Default)]
pub struct Counter(Option<Arc<AtomicU64>>);

impl Counter {
    /// A no-op counter (what the disabled registry hands out).
    pub fn disabled() -> Self {
        Self(None)
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        if let Some(c) = &self.0 {
            c.fetch_add(n, Relaxed);
        }
    }

    /// Adds one.
    pub fn incr(&self) {
        self.add(1);
    }

    /// Current value (0 on the disabled handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |c| c.load(Relaxed))
    }
}

/// A last-write-wins value. Updates are relaxed atomics; the disabled
/// handle discards them.
#[derive(Debug, Clone, Default)]
pub struct Gauge(Option<Arc<AtomicU64>>);

impl Gauge {
    /// A no-op gauge (what the disabled registry hands out).
    pub fn disabled() -> Self {
        Self(None)
    }

    /// Sets the value.
    pub fn set(&self, v: u64) {
        if let Some(g) = &self.0 {
            g.store(v, Relaxed);
        }
    }

    /// Current value (0 on the disabled handle).
    pub fn get(&self) -> u64 {
        self.0.as_ref().map_or(0, |g| g.load(Relaxed))
    }
}

/// A power-of-two-bucketed distribution of `u64` samples.
#[derive(Debug, Clone, Default)]
pub struct Histogram(Option<Arc<HistInner>>);

impl Histogram {
    /// A no-op histogram (what the disabled registry hands out).
    pub fn disabled() -> Self {
        Self(None)
    }

    /// Records one sample.
    pub fn record(&self, v: u64) {
        if let Some(h) = &self.0 {
            h.record(v);
        }
    }

    /// Number of samples recorded (0 on the disabled handle).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |h| h.count.load(Relaxed))
    }
}

/// A span-style timer: each completed span records its duration (count,
/// total, max nanoseconds). On the disabled handle, [`start`](Self::start)
/// never reads the clock.
#[derive(Debug, Clone, Default)]
pub struct PhaseTimer(Option<Arc<PhaseInner>>);

impl PhaseTimer {
    /// A no-op timer (what the disabled registry hands out).
    pub fn disabled() -> Self {
        Self(None)
    }

    /// Opens a span; the returned guard records the duration when dropped.
    /// The guard owns its storage, so it outlives any borrow of `self`.
    pub fn start(&self) -> PhaseGuard {
        PhaseGuard(self.0.as_ref().map(|p| (Arc::clone(p), Instant::now())))
    }

    /// Times one closure call as a span.
    pub fn time<R>(&self, f: impl FnOnce() -> R) -> R {
        let _guard = self.start();
        f()
    }

    /// Spans completed so far (0 on the disabled handle).
    pub fn count(&self) -> u64 {
        self.0.as_ref().map_or(0, |p| p.count.load(Relaxed))
    }

    /// Total nanoseconds across completed spans (0 on the disabled handle).
    pub fn total_nanos(&self) -> u64 {
        self.0.as_ref().map_or(0, |p| p.total_nanos.load(Relaxed))
    }
}

/// Guard returned by [`PhaseTimer::start`]; records the span on drop.
#[derive(Debug)]
pub struct PhaseGuard(Option<(Arc<PhaseInner>, Instant)>);

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let Some((phase, start)) = self.0.take() {
            phase.record(start.elapsed().as_nanos() as u64);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_handles_are_noops() {
        let t = Telemetry::disabled();
        assert!(!t.is_enabled());
        let c = t.counter("c");
        c.add(5);
        assert_eq!(c.get(), 0);
        t.gauge("g").set(7);
        assert_eq!(t.gauge("g").get(), 0);
        assert!(t.snapshot(0, 0).is_none());
        let p = t.phase("p");
        p.time(|| ());
        assert_eq!(p.count(), 0);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn counters_and_gauges_round_trip_through_clones() {
        let t = Telemetry::registry();
        let c = t.counter("hits");
        c.add(2);
        c.incr();
        // A second handle to the same name shares storage.
        assert_eq!(t.counter("hits").get(), 3);
        let t2 = t.clone();
        t2.gauge("depth").set(9);
        assert_eq!(t.gauge("depth").get(), 9);
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn phase_timer_records_spans() {
        let t = Telemetry::registry();
        let p = t.phase("work");
        p.time(|| std::hint::black_box(41 + 1));
        {
            let _g = p.start();
        }
        assert_eq!(p.count(), 2);
        let snap = t.snapshot(0, 10).unwrap();
        match &snap.metrics["work"] {
            MetricValue::Phase { count, .. } => assert_eq!(*count, 2),
            other => panic!("expected phase, got {other:?}"),
        }
    }

    #[cfg(feature = "enabled")]
    #[test]
    fn histogram_buckets_by_power_of_two() {
        let t = Telemetry::registry();
        let h = t.histogram("sizes");
        for v in [0, 1, 2, 3, 4, 1024] {
            h.record(v);
        }
        assert_eq!(h.count(), 6);
        let snap = t.snapshot(1, 6).unwrap();
        match &snap.metrics["sizes"] {
            MetricValue::Histogram {
                count,
                sum,
                max,
                buckets,
            } => {
                assert_eq!(*count, 6);
                assert_eq!(*sum, 1034);
                assert_eq!(*max, 1024);
                // 0 → bucket 0; 1 → bucket 1; 2,3 → bucket 2; 4 → bucket 3;
                // 1024 → bucket 11; trailing zero buckets are trimmed.
                assert_eq!(buckets.len(), 12);
                assert_eq!(buckets[0], 1);
                assert_eq!(buckets[2], 2);
                assert_eq!(buckets[11], 1);
            }
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[cfg(feature = "enabled")]
    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_mismatch_panics() {
        let t = Telemetry::registry();
        t.counter("x");
        t.gauge("x");
    }
}
