//! The stable metric name catalogue.
//!
//! Every stat surface in the workspace registers under one of these names,
//! so exporters, dashboards, and the CI metrics smoke can rely on them.
//! Names are `<source>.<metric>`; sources are `arena` (the node arena),
//! `engine` (the Velodrome analysis), `aerodrome` (the vector-clock
//! atomicity screen), `hybrid` (the two-tier screen-then-diagnose
//! checker), `watchdog` (the adversarial scheduler's pause watchdog),
//! `runtime` (the live-monitoring shim), `batch` (the parallel
//! `check-batch` runner), and `phase` (hot-path span timers). Renaming an
//! entry here is a breaking change to the exported JSONL schema — add,
//! don't rename.

/// Total transaction nodes ever allocated (Table 1 "Allocated").
pub const ARENA_ALLOCATED: &str = "arena.allocated";
/// Peak simultaneously-alive nodes (Table 1 "Max. Alive").
pub const ARENA_MAX_ALIVE: &str = "arena.max_alive";
/// Currently alive nodes.
pub const ARENA_CUR_ALIVE: &str = "arena.cur_alive";
/// Nodes reclaimed by garbage collection.
pub const ARENA_COLLECTED: &str = "arena.collected";
/// Happens-before edges inserted.
pub const ARENA_EDGES_ADDED: &str = "arena.edges_added";
/// Edge insertions that only refreshed timestamps of an existing edge.
pub const ARENA_EDGES_REPLACED: &str = "arena.edges_replaced";
/// Edge insertions skipped by the redundant-edge elision gate.
pub const ARENA_EDGES_ELIDED: &str = "arena.edges_elided";
/// Slot-exhaustion events (arena full; analysis degraded, host kept alive).
pub const ARENA_EXHAUSTED: &str = "arena.exhausted";
/// 48-bit timestamp overflows (analysis degraded, host kept alive).
pub const ARENA_TS_OVERFLOW: &str = "arena.ts_overflow";
/// Distribution of live-node counts sampled over a run.
pub const ARENA_ALIVE_SAMPLE: &str = "arena.alive_sample";

/// Operations processed by the engine.
pub const ENGINE_OPS: &str = "engine.ops";
/// Edge insertions short-circuited by the per-thread epoch cache.
pub const ENGINE_EPOCH_HITS: &str = "engine.epoch_hits";
/// Non-transactional operations merged into an existing node.
pub const ENGINE_MERGES_REUSED: &str = "engine.merges_reused";
/// Non-transactional operations that vanished (all predecessors `⊥`).
pub const ENGINE_MERGES_BOTTOM: &str = "engine.merges_bottom";
/// Cycles detected (before per-label deduplication).
pub const ENGINE_CYCLES_DETECTED: &str = "engine.cycles_detected";
/// Warnings dropped because the warning budget was exhausted.
pub const ENGINE_WARNINGS_SUPPRESSED: &str = "engine.warnings_suppressed";
/// Degradation-ladder transitions taken by the engine.
pub const ENGINE_DEGRADATIONS: &str = "engine.degradations";
/// Variables quarantined from happens-before edge creation.
pub const ENGINE_VARS_QUARANTINED: &str = "engine.vars_quarantined";
/// Current rung of the engine's degradation ladder (0 = full fidelity,
/// rising as fidelity is shed; monotone non-decreasing over a run).
pub const ENGINE_LADDER: &str = "engine.ladder";

/// Operations screened by the vector-clock screen.
pub const AERODROME_EVENTS: &str = "aerodrome.events";
/// Conflict-edge clock joins attempted by the screen.
pub const AERODROME_JOINS: &str = "aerodrome.joins";
/// Joins resolved against a still-active publisher's live clock.
pub const AERODROME_LIVE_JOINS: &str = "aerodrome.live_joins";
/// Joins absorbed by the clock-version (epoch) fast path.
pub const AERODROME_EPOCH_HITS: &str = "aerodrome.epoch_hits";
/// Definite own-time violations found by the screen.
pub const AERODROME_VIOLATIONS: &str = "aerodrome.violations";
/// Conservative escalation flags raised without a definite violation.
pub const AERODROME_POTENTIAL_FLAGS: &str = "aerodrome.potential_flags";

/// Screen-to-graph-engine escalations taken by the hybrid checker (0 or 1
/// per run; the engine stays engaged once entered).
pub const HYBRID_ESCALATIONS: &str = "hybrid.escalations";
/// Peak number of operations held in the hybrid's replay buffer.
pub const HYBRID_BUFFERED_EVENTS: &str = "hybrid.buffered_events";
/// Operations evicted from a bounded replay window before escalation.
pub const HYBRID_TRUNCATED_EVENTS: &str = "hybrid.truncated_events";
/// Graph node + edge operations actually performed (zero until escalation).
pub const HYBRID_GRAPH_OPS: &str = "hybrid.graph_ops";

/// Pauses issued by the adversarial scheduler on the advisor's suspicion.
pub const WATCHDOG_PAUSES_ISSUED: &str = "watchdog.pauses_issued";
/// Pause waivers because the paused thread was the only runnable one.
pub const WATCHDOG_FORCED_SOLE_RUNNABLE: &str = "watchdog.forced_sole_runnable";
/// Pause waivers because every runnable thread was paused at once.
pub const WATCHDOG_FORCED_ALL_PAUSED: &str = "watchdog.forced_all_paused";
/// Pause waivers because the global pause-step deadline expired.
pub const WATCHDOG_FORCED_DEADLINE: &str = "watchdog.forced_deadline";

/// Events observed by the monitoring runtime (shims + synthesized).
pub const RUNTIME_EVENTS_SEEN: &str = "runtime.events_seen";
/// Tool callbacks that panicked (the tool is quarantined on the first).
pub const RUNTIME_TOOL_PANICS: &str = "runtime.tool_panics";
/// Events not retained in the replay trace (trace budget tripped).
pub const RUNTIME_TRACE_EVENTS_DROPPED: &str = "runtime.trace_events_dropped";
/// Degradation-ladder transitions taken by the runtime.
pub const RUNTIME_DEGRADATIONS: &str = "runtime.degradations";
/// `End`/`Release` events synthesized by `Runtime::finish`.
pub const RUNTIME_SYNTHESIZED_EVENTS: &str = "runtime.synthesized_events";
/// Current rung of the runtime's degradation ladder.
pub const RUNTIME_LADDER: &str = "runtime.ladder";

/// Traces whose analysis completed (whatever the verdict).
pub const BATCH_TRACES_CHECKED: &str = "batch.traces_checked";
/// Traces that failed to load or analyze (I/O or malformed input).
pub const BATCH_TRACES_FAILED: &str = "batch.traces_failed";
/// Traces quarantined because their analysis panicked.
pub const BATCH_TRACES_QUARANTINED: &str = "batch.traces_quarantined";
/// Total operations across all successfully checked traces.
pub const BATCH_EVENTS_TOTAL: &str = "batch.events_total";
/// Aggregate throughput of the batch, in events per second of wall time.
pub const BATCH_EVENTS_PER_SEC: &str = "batch.events_per_sec";
/// Atomicity warnings reported across all checked traces.
pub const BATCH_WARNINGS_TOTAL: &str = "batch.warnings_total";
/// Size of the worker pool the batch ran with.
pub const BATCH_JOBS: &str = "batch.jobs";

/// Span timer around `Velodrome::advance` (one span per operation that
/// reaches the happens-before machinery).
pub const PHASE_ADVANCE: &str = "phase.advance";
/// Span timer around `Arena::add_edge` calls.
pub const PHASE_ADD_EDGE: &str = "phase.add_edge";
/// Span timer around cycle reconstruction and blame assignment.
pub const PHASE_CYCLE_CHECK: &str = "phase.cycle_check";
/// Span timer around GC cascades (`Arena::finish`).
pub const PHASE_GC: &str = "phase.gc";
/// Span timer around scheduler picks in the simulator.
pub const PHASE_SCHEDULER_STEP: &str = "phase.scheduler_step";
