//! Point-in-time metric snapshots and the fixed-size ring they live in.

use serde::value::{Map, Number, Value};
use std::collections::BTreeMap;
use std::collections::VecDeque;

/// A copy of one metric at snapshot time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// A monotonically increasing count.
    Counter(u64),
    /// A last-write-wins value.
    Gauge(u64),
    /// A span-timer summary.
    Phase {
        /// Spans completed.
        count: u64,
        /// Total nanoseconds across completed spans.
        total_nanos: u64,
        /// Longest single span, in nanoseconds.
        max_nanos: u64,
    },
    /// A power-of-two-bucketed distribution.
    Histogram {
        /// Samples recorded.
        count: u64,
        /// Sum of all samples.
        sum: u64,
        /// Largest sample.
        max: u64,
        /// Bucket occupancy; bucket 0 holds zeros, bucket `i` holds values
        /// whose highest set bit is `i - 1`. Trailing empty buckets are
        /// trimmed.
        buckets: Vec<u64>,
    },
}

impl MetricValue {
    /// The headline scalar for this metric: counter/gauge value, phase span
    /// count, or histogram sample count. What consumers that only want "the
    /// number" (bench bins, smoke checks) read.
    pub fn scalar(&self) -> u64 {
        match self {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => *v,
            MetricValue::Phase { count, .. } | MetricValue::Histogram { count, .. } => *count,
        }
    }

    fn to_json(&self) -> Value {
        let mut m = Map::new();
        let num = |v: u64| Value::Num(Number::from_u64(v));
        match self {
            MetricValue::Counter(v) => {
                m.insert("type".into(), Value::Str("counter".into()));
                m.insert("value".into(), num(*v));
            }
            MetricValue::Gauge(v) => {
                m.insert("type".into(), Value::Str("gauge".into()));
                m.insert("value".into(), num(*v));
            }
            MetricValue::Phase {
                count,
                total_nanos,
                max_nanos,
            } => {
                m.insert("type".into(), Value::Str("phase".into()));
                m.insert("count".into(), num(*count));
                m.insert("total_nanos".into(), num(*total_nanos));
                m.insert("max_nanos".into(), num(*max_nanos));
            }
            MetricValue::Histogram {
                count,
                sum,
                max,
                buckets,
            } => {
                m.insert("type".into(), Value::Str("histogram".into()));
                m.insert("count".into(), num(*count));
                m.insert("sum".into(), num(*sum));
                m.insert("max".into(), num(*max));
                m.insert(
                    "buckets".into(),
                    Value::Array(buckets.iter().map(|&b| num(b)).collect()),
                );
            }
        }
        Value::Object(m)
    }
}

/// A point-in-time copy of every registered metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Snapshot {
    /// Snapshot sequence number (0-based, per run).
    pub seq: u64,
    /// Events processed when the snapshot was taken.
    pub events: u64,
    /// Metric values, sorted by name.
    pub metrics: BTreeMap<String, MetricValue>,
}

impl Snapshot {
    /// Renders the snapshot as a JSON value:
    /// `{"seq":…,"events":…,"metrics":{name:{"type":…,…},…}}`.
    pub fn to_json(&self) -> Value {
        let mut metrics = Map::new();
        for (name, value) in &self.metrics {
            metrics.insert(name.clone(), value.to_json());
        }
        let mut root = Map::new();
        root.insert("seq".into(), Value::Num(Number::from_u64(self.seq)));
        root.insert("events".into(), Value::Num(Number::from_u64(self.events)));
        root.insert("metrics".into(), Value::Object(metrics));
        Value::Object(root)
    }

    /// Renders the snapshot as one compact JSON line (no trailing newline).
    pub fn to_json_line(&self) -> String {
        serde_json::to_string(&self.to_json()).expect("snapshot serialization is infallible")
    }

    /// Convenience lookup of a metric's headline scalar by name.
    pub fn scalar(&self, name: &str) -> Option<u64> {
        self.metrics.get(name).map(MetricValue::scalar)
    }
}

/// A fixed-capacity ring of the most recent snapshots. Keeps the latest
/// `capacity` snapshots; older ones are evicted in FIFO order, so memory
/// stays bounded no matter how long a run is.
#[derive(Debug, Clone)]
pub struct SnapshotRing {
    capacity: usize,
    ring: VecDeque<Snapshot>,
}

impl SnapshotRing {
    /// Creates a ring holding at most `capacity` snapshots (minimum 1).
    pub fn new(capacity: usize) -> Self {
        let capacity = capacity.max(1);
        Self {
            capacity,
            ring: VecDeque::with_capacity(capacity),
        }
    }

    /// Appends a snapshot, evicting the oldest when full.
    pub fn push(&mut self, snap: Snapshot) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(snap);
    }

    /// Number of retained snapshots.
    pub fn len(&self) -> usize {
        self.ring.len()
    }

    /// Returns `true` when no snapshots are retained.
    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    /// Maximum number of retained snapshots.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The most recent snapshot, if any.
    pub fn latest(&self) -> Option<&Snapshot> {
        self.ring.back()
    }

    /// Iterates oldest → newest.
    pub fn iter(&self) -> impl Iterator<Item = &Snapshot> {
        self.ring.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn snap(seq: u64) -> Snapshot {
        let mut metrics = BTreeMap::new();
        metrics.insert("a.count".to_owned(), MetricValue::Counter(seq * 10));
        Snapshot {
            seq,
            events: seq * 100,
            metrics,
        }
    }

    #[test]
    fn ring_evicts_oldest() {
        let mut ring = SnapshotRing::new(2);
        ring.push(snap(0));
        ring.push(snap(1));
        ring.push(snap(2));
        assert_eq!(ring.len(), 2);
        let seqs: Vec<u64> = ring.iter().map(|s| s.seq).collect();
        assert_eq!(seqs, vec![1, 2]);
        assert_eq!(ring.latest().unwrap().seq, 2);
    }

    #[test]
    fn json_line_round_trips() {
        let mut metrics = BTreeMap::new();
        metrics.insert("x.counter".to_owned(), MetricValue::Counter(3));
        metrics.insert("x.gauge".to_owned(), MetricValue::Gauge(7));
        metrics.insert(
            "x.phase".to_owned(),
            MetricValue::Phase {
                count: 2,
                total_nanos: 900,
                max_nanos: 600,
            },
        );
        metrics.insert(
            "x.hist".to_owned(),
            MetricValue::Histogram {
                count: 1,
                sum: 4,
                max: 4,
                buckets: vec![0, 0, 0, 1],
            },
        );
        let s = Snapshot {
            seq: 5,
            events: 5000,
            metrics,
        };
        let line = s.to_json_line();
        assert!(!line.contains('\n'));
        let v: serde_json::Value = serde_json::from_str(&line).unwrap();
        assert_eq!(v["seq"].as_u64(), Some(5));
        assert_eq!(v["events"].as_u64(), Some(5000));
        assert_eq!(v["metrics"]["x.counter"]["value"].as_u64(), Some(3));
        assert_eq!(v["metrics"]["x.phase"]["type"], "phase");
        assert_eq!(
            v["metrics"]["x.hist"]["buckets"].as_array().unwrap().len(),
            4
        );
        assert_eq!(s.scalar("x.gauge"), Some(7));
        assert_eq!(s.scalar("x.phase"), Some(2));
        assert_eq!(s.scalar("missing"), None);
    }
}
