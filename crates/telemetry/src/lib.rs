//! Structured telemetry for the Velodrome runtime.
//!
//! The paper's evaluation (§6, Tables 1–2) rests on internal counters —
//! nodes allocated vs. alive, edges added vs. elided, GC cascades,
//! scheduler pauses — and the production north star needs the same numbers
//! exported live. This crate is the common substrate every stat surface
//! registers onto:
//!
//! * [`Telemetry`] — a cheap-to-clone handle to a metric registry. The
//!   registry lock is touched only at *registration*; every update on a
//!   [`Counter`], [`Gauge`], [`Histogram`], or [`PhaseTimer`] handle is a
//!   relaxed atomic on pre-resolved storage, so the hot path never
//!   contends.
//! * Phase timers — span-style start/stop around the analysis hot spots
//!   (`Velodrome::advance`, `Arena::add_edge`, cycle check, GC cascade,
//!   scheduler step) recording call count, total and max nanoseconds.
//! * [`Snapshot`]s — a point-in-time copy of every registered metric,
//!   collected periodically into a fixed-size [`SnapshotRing`] and written
//!   out as JSON Lines by [`JsonlExporter`] (the CLI's `--metrics-out`).
//!
//! # Zero overhead when disabled
//!
//! [`Telemetry::disabled`] returns a no-op handle: all its handles carry
//! `None` storage, so updates are a single never-taken branch and phase
//! timers never call `Instant::now`. Additionally the whole implementation
//! sits behind the default-on `enabled` cargo feature; with the feature
//! off, [`Telemetry::registry`] *also* returns the disabled handle, so a
//! build can compile telemetry out entirely without touching call sites.

pub mod export;
pub mod names;
pub mod registry;
pub mod snapshot;

pub use export::JsonlExporter;
pub use registry::{Counter, Gauge, Histogram, PhaseGuard, PhaseTimer, Telemetry};
pub use snapshot::{MetricValue, Snapshot, SnapshotRing};
