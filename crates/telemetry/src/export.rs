//! JSON Lines export of metric snapshots.

use crate::snapshot::Snapshot;
use std::io::{self, Write};

/// Writes [`Snapshot`]s as JSON Lines: one compact JSON object per line,
/// flushed after each write so a crashed run still leaves every completed
/// snapshot on disk.
#[derive(Debug)]
pub struct JsonlExporter<W: Write> {
    out: W,
    lines: u64,
}

impl<W: Write> JsonlExporter<W> {
    /// Wraps a writer.
    pub fn new(out: W) -> Self {
        Self { out, lines: 0 }
    }

    /// Writes one snapshot as a JSON line and flushes.
    pub fn export(&mut self, snap: &Snapshot) -> io::Result<()> {
        let line = snap.to_json_line();
        self.out.write_all(line.as_bytes())?;
        self.out.write_all(b"\n")?;
        self.out.flush()?;
        self.lines += 1;
        Ok(())
    }

    /// Number of lines written so far.
    pub fn lines_written(&self) -> u64 {
        self.lines
    }

    /// Unwraps the inner writer.
    pub fn into_inner(self) -> W {
        self.out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::snapshot::MetricValue;
    use std::collections::BTreeMap;

    #[test]
    fn exports_one_parseable_line_per_snapshot() {
        let mut exporter = JsonlExporter::new(Vec::new());
        for seq in 0..3 {
            let mut metrics = BTreeMap::new();
            metrics.insert("engine.ops".to_owned(), MetricValue::Counter(seq * 2));
            let snap = Snapshot {
                seq,
                events: seq * 2,
                metrics,
            };
            exporter.export(&snap).unwrap();
        }
        assert_eq!(exporter.lines_written(), 3);
        let text = String::from_utf8(exporter.into_inner()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        for (i, line) in lines.iter().enumerate() {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert_eq!(v["seq"].as_u64(), Some(i as u64));
        }
    }
}
